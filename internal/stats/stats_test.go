package stats

import (
	"math"
	"testing"
	"testing/quick"

	"csmabw/internal/sim"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Errorf("variance = %g, want 2.5", s.Variance)
	}
	if math.Abs(s.StdDev()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g", s.StdDev())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if !math.IsInf(s.CI95HalfWidth(), 1) {
		t.Error("CI of empty sample should be infinite")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Variance != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestCI95Shrinks(t *testing.T) {
	r := sim.NewRand(1)
	mk := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		return Summarize(xs).CI95HalfWidth()
	}
	if mk(10000) >= mk(100) {
		t.Error("CI should shrink with sample size")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %g, want 5", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q>1":   func() { Quantile([]float64{1}, 1.5) },
		"q<0":   func() { Quantile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestECDFStep(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestECDFInterpolated(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	// F(0)=0.5, F(10)=1, linear in between.
	if got := e.AtInterpolated(5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("interp at 5 = %g, want 0.75", got)
	}
	if got := e.AtInterpolated(-1); got != 0 {
		t.Errorf("interp below support = %g", got)
	}
	if got := e.AtInterpolated(11); got != 1 {
		t.Errorf("interp above support = %g", got)
	}
	if got := e.AtInterpolated(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("interp at first point = %g, want 0.5", got)
	}
}

func TestECDFInterpolatedMonotone(t *testing.T) {
	r := sim.NewRand(2)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 10
	}
	e := NewECDF(xs)
	prev := -1.0
	for x := -1.0; x < 12; x += 0.01 {
		v := e.AtInterpolated(x)
		if v < prev-1e-12 {
			t.Fatalf("interpolated ECDF decreased at %g", x)
		}
		if v < 0 || v > 1 {
			t.Fatalf("interpolated ECDF out of [0,1] at %g: %g", x, v)
		}
		prev = v
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	r := sim.NewRand(3)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	res := KSTwoSample(xs, xs, 0.05)
	if res.D != 0 {
		t.Errorf("KS D of identical samples = %g", res.D)
	}
	if res.Reject() {
		t.Error("identical samples rejected")
	}
}

func TestKSSameDistributionAccepted(t *testing.T) {
	r := sim.NewRand(4)
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Exp(1)
		}
		return xs
	}
	rejected := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		if KSTwoSample(mk(300), mk(300), 0.05).Reject() {
			rejected++
		}
	}
	// At alpha=0.05 we expect ~5% false rejections.
	if rejected > trials/4 {
		t.Errorf("%d/%d same-distribution pairs rejected", rejected, trials)
	}
}

func TestKSDifferentDistributionsRejected(t *testing.T) {
	r := sim.NewRand(5)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.Exp(1)
		b[i] = r.Exp(2) // different mean
	}
	if !KSTwoSample(a, b, 0.05).Reject() {
		t.Error("clearly different distributions not rejected")
	}
	if !KSTwoSampleInterp(a, b, 0.05).Reject() {
		t.Error("interp variant did not reject different distributions")
	}
}

func TestKSShiftDetected(t *testing.T) {
	n := 400
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i) / float64(n)
		b[i] = float64(i)/float64(n) + 0.5
	}
	res := KSTwoSample(a, b, 0.05)
	if res.D < 0.45 {
		t.Errorf("KS D = %g for a 0.5 shift of U(0,1), want ~0.5", res.D)
	}
}

func TestKSThresholdScales(t *testing.T) {
	a := ksCritical(100, 100, 0.05)
	b := ksCritical(1000, 1000, 0.05)
	if b >= a {
		t.Error("threshold should shrink with sample size")
	}
	if ksCritical(100, 100, 0.01) <= ksCritical(100, 100, 0.05) {
		t.Error("stricter alpha should raise threshold")
	}
}

func TestKSInterpCloseToStep(t *testing.T) {
	// With large samples the interpolated statistic should be close to
	// the step statistic.
	r := sim.NewRand(6)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Exp(1)
		b[i] = r.Exp(1.3)
	}
	d1 := KSTwoSample(a, b, 0.05).D
	d2 := KSTwoSampleInterp(a, b, 0.05).D
	if math.Abs(d1-d2) > 0.05 {
		t.Errorf("step D=%g vs interp D=%g differ too much", d1, d2)
	}
}

func TestKSPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty a":   func() { KSTwoSample(nil, []float64{1}, 0.05) },
		"empty b":   func() { KSTwoSampleInterp([]float64{1}, nil, 0.05) },
		"bad alpha": func() { KSTwoSample([]float64{1}, []float64{2}, 0.2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.5, 0.9, -1, 2}, 0, 1, 10)
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if c := h.BinCenter(0); math.Abs(c-0.05) > 1e-12 {
		t.Errorf("BinCenter(0) = %g", c)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram([]float64{0.15, 0.15, 0.16, 0.8}, 0, 1, 10)
	if h.Mode() != 1 {
		t.Errorf("Mode = %d, want 1", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins": func() { NewHistogram(nil, 0, 1, 0) },
		"bad range": func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	if got := Autocorrelation(xs, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("lag-0 autocorrelation = %g, want 1", got)
	}
}

func TestAutocorrelationAlternating(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if got := Autocorrelation(xs, 1); got > -0.9 {
		t.Errorf("alternating series lag-1 = %g, want ~-1", got)
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := sim.NewRand(42)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if got := Autocorrelation(xs, 1); math.Abs(got) > 0.05 {
		t.Errorf("white noise lag-1 = %g, want ~0", got)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// Strongly persistent series: positive lag-1 correlation.
	r := sim.NewRand(7)
	xs := make([]float64, 2000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9*xs[i-1] + (r.Float64() - 0.5)
	}
	if got := Autocorrelation(xs, 1); got < 0.7 {
		t.Errorf("AR(1) lag-1 = %g, want > 0.7", got)
	}
}

func TestAutocorrelationConstant(t *testing.T) {
	if got := Autocorrelation([]float64{3, 3, 3}, 1); got != 0 {
		t.Errorf("constant series = %g, want 0 (zero variance)", got)
	}
}

func TestAutocorrelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lag out of range")
		}
	}()
	Autocorrelation([]float64{1, 2}, 2)
}

// Property: ECDF.At is within [0,1] and monotone for arbitrary samples.
func TestECDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		prev := 0.0
		for _, x := range e.sorted {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return e.At(e.sorted[len(e.sorted)-1]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceKSD computes the two-sample step-vs-step KS statistic the
// slow, obviously-correct way: |Fa - Fb| is evaluated at every sample
// point of either sample and as the left limit just below it (counting
// with < instead of <=), with no ECDF machinery shared with the
// implementation under test.
func bruteForceKSD(a, b []float64) float64 {
	pts := append(append([]float64(nil), a...), b...)
	frac := func(xs []float64, x float64, strict bool) float64 {
		n := 0
		for _, v := range xs {
			if v < x || (!strict && v == x) {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
	d := 0.0
	for _, x := range pts {
		if v := math.Abs(frac(a, x, false) - frac(b, x, false)); v > d {
			d = v
		}
		if v := math.Abs(frac(a, x, true) - frac(b, x, true)); v > d {
			d = v
		}
	}
	return d
}

// TestKSSupremumBothJumpSets is the regression test for the supremum
// evaluation: the step-vs-step statistic must examine both sides of the
// jump points of *both* samples. The fixture places the reference
// pool's only jump strictly between two jumps of a, where the distance
// just below the pool's jump is as large as anywhere else — a point the
// evaluation must not miss.
func TestKSSupremumBothJumpSets(t *testing.T) {
	a := []float64{0, 0, 0, 100}
	b := []float64{50}
	got := KSTwoSample(a, b, 0.05).D
	want := bruteForceKSD(a, b)
	if got != want {
		t.Fatalf("KS D = %g, brute force %g", got, want)
	}
}

// TestKSMatchesBruteForce cross-validates the optimized supremum search
// against the brute-force evaluation on random samples, including heavy
// ties (integer-valued draws), tiny samples, and disjoint supports.
func TestKSMatchesBruteForce(t *testing.T) {
	r := sim.NewRand(77)
	draw := func(n int, tie bool, shift float64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			v := r.Float64()*4 + shift
			if tie {
				v = math.Floor(v)
			}
			xs[i] = v
		}
		return xs
	}
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+r.Intn(30), 1+r.Intn(30)
		tieA, tieB := r.Intn(2) == 0, r.Intn(2) == 0
		shift := 0.0
		if r.Intn(3) == 0 {
			shift = 10 // disjoint supports
		}
		a := draw(na, tieA, 0)
		b := draw(nb, tieB, shift)
		got := KSTwoSample(a, b, 0.05).D
		want := bruteForceKSD(a, b)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: KS D = %g, brute force %g (a=%v b=%v)", trial, got, want, a, b)
		}
	}
}

func TestSigmaInflation(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0, 1}, {-0.5, 1}, {math.NaN(), 1},
		{0.25, 2}, // 1 + sqrt(1)
		{1, 3},    // 1 + sqrt(4) = 3, the clamp boundary
		{1.5, 3},  // p clamped into [0, 1] first
		{100, 3},  // far out of range still saturates at 3
	}
	for _, tt := range cases {
		if got := SigmaInflation(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("SigmaInflation(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Monotone non-decreasing over the whole loss range.
	prev := 0.0
	for p := 0.0; p <= 1.0; p += 0.01 {
		f := SigmaInflation(p)
		if f < prev {
			t.Fatalf("SigmaInflation not monotone at p=%g: %g < %g", p, f, prev)
		}
		prev = f
	}
}

func TestEffectiveCI95HalfWidth(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	base := s.CI95HalfWidth()
	if got := s.EffectiveCI95HalfWidth(0); got != base {
		t.Errorf("loss-free effective CI %g != plain CI %g", got, base)
	}
	if got := s.EffectiveCI95HalfWidth(0.25); math.Abs(got-2*base) > 1e-12 {
		t.Errorf("effective CI at p=0.25 = %g, want %g", got, 2*base)
	}
	// The inflated half-width is never narrower than the plain one.
	if err := quick.Check(func(p float64) bool {
		return s.EffectiveCI95HalfWidth(p) >= base
	}, nil); err != nil {
		t.Error(err)
	}
}
