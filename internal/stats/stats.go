// Package stats provides the statistical machinery the paper's analysis
// relies on: empirical distributions, the two-sample Kolmogorov–Smirnov
// test with linear interpolation of the discrete ECDF (footnote 2 of the
// paper), histograms, summary statistics with confidence intervals, the
// MSER-m warm-up truncation heuristic (Section 7.4), and the
// tolerance-based transient-duration estimator behind Figure 10.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Min      float64
	Max      float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// CI95HalfWidth returns the half-width of a normal-approximation 95%
// confidence interval for the mean.
func (s Summary) CI95HalfWidth() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.N))
}

// SigmaInflation returns the loss-aware standard-deviation inflation
// factor 1 + sqrt(4p) for a packet-loss fraction p, clamped to [1, 3]
// (p outside [0, 1] is clamped into it first). Loss both removes
// samples and correlates the survivors' dispersion, so a campaign on a
// lossy link needs more evidence for the same confidence; inflating
// sigma by this factor is the bwprobe-style correction that lengthens
// the campaign instead of letting it stop early on an optimistic
// confidence interval. A zero loss fraction returns exactly 1, so
// loss-free campaigns are untouched.
func SigmaInflation(p float64) float64 {
	if math.IsNaN(p) || p <= 0 {
		return 1
	}
	if p > 1 {
		p = 1
	}
	f := 1 + math.Sqrt(4*p)
	if f > 3 {
		f = 3
	}
	return f
}

// EffectiveCI95HalfWidth is CI95HalfWidth with the loss-aware sigma
// inflation applied: z·sigma_eff/sqrt(n) where sigma_eff =
// sigma·SigmaInflation(lossFrac). This is the effective error bound
// (epsilon_eff) a budget-truncated campaign reports — the half-width
// the evidence actually supports, never the target it was aiming for.
func (s Summary) EffectiveCI95HalfWidth(lossFrac float64) float64 {
	return s.CI95HalfWidth() * SigmaInflation(lossFrac)
}

// Mean is a convenience for Summarize(xs).Mean.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on empty input or
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a sorted
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (a copy is taken and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns the step-function ECDF value F(x) = P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// AtInterpolated returns a continuous version of the ECDF obtained by
// linear interpolation between the jump points, the convention the paper
// adopts when comparing two empirical discrete distributions with the KS
// test (footnote 2).
func (e *ECDF) AtInterpolated(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if x <= e.sorted[0] {
		if x == e.sorted[0] {
			return 1 / float64(n)
		}
		return 0
	}
	if x >= e.sorted[n-1] {
		return 1
	}
	// Find i with sorted[i] <= x < sorted[i+1].
	i := sort.SearchFloat64s(e.sorted, x)
	if i < n && e.sorted[i] == x {
		return float64(i+1) / float64(n)
	}
	i--
	x0, x1 := e.sorted[i], e.sorted[i+1]
	f0, f1 := float64(i+1)/float64(n), float64(i+2)/float64(n)
	if x1 == x0 {
		return f1
	}
	return f0 + (f1-f0)*(x-x0)/(x1-x0)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
// The access delays of consecutive probing packets are positively
// correlated (each packet's contention outcome conditions the next
// packet's queue state), which is why the MSER correction is applied to
// the ensemble mean series rather than to single noisy trains.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		panic(fmt.Sprintf("stats: lag %d outside series of %d", k, n))
	}
	mean := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+k < n; i++ {
		num += (xs[i] - mean) * (xs[i+k] - mean)
	}
	return num / den
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples above Hi
}

// NewHistogram bins xs into bins equal-width buckets over [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g, %g)", lo, hi))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / w)
			if i == bins { // guard against FP edge
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the most populated bin (ties: lowest index).
func (h *Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}
