package stats

import "fmt"

// MSERResult describes the truncation point chosen by the MSER-m
// heuristic.
type MSERResult struct {
	// Cut is the number of raw observations to discard from the front of
	// the series (a multiple of the batch size m).
	Cut int
	// Batches is the number of batch means formed.
	Batches int
	// Statistic is the minimised MSER value at the chosen cut.
	Statistic float64
}

// MSERm applies the MSER-m warm-up truncation heuristic (the popular
// simulation "warm-up problem" detector the paper applies in Section 7.4
// as MSER-2). The series xs is grouped into batches of size m; for every
// candidate truncation point d (in batches) the statistic
//
//	z(d) = s²(d) / (k - d)
//
// is evaluated, where s²(d) is the variance of the remaining k-d batch
// means; the d minimising z is returned. Following standard practice the
// search is limited to the first half of the series so the tail estimate
// stays stable.
func MSERm(xs []float64, m int) MSERResult {
	if m <= 0 {
		panic(fmt.Sprintf("stats: MSER batch size %d", m))
	}
	k := len(xs) / m
	if k < 2 {
		return MSERResult{Cut: 0, Batches: k}
	}
	batch := make([]float64, k)
	for i := 0; i < k; i++ {
		sum := 0.0
		for j := 0; j < m; j++ {
			sum += xs[i*m+j]
		}
		batch[i] = sum / float64(m)
	}

	// Suffix sums allow O(1) mean/variance of batch[d:].
	bestD, bestZ := 0, 0.0
	first := true
	maxD := k / 2
	for d := 0; d <= maxD; d++ {
		n := k - d
		if n < 2 {
			break
		}
		mean, ss := 0.0, 0.0
		for i := d; i < k; i++ {
			mean += batch[i]
		}
		mean /= float64(n)
		for i := d; i < k; i++ {
			diff := batch[i] - mean
			ss += diff * diff
		}
		z := ss / float64(n) / float64(n)
		if first || z < bestZ {
			first = false
			bestD, bestZ = d, z
		}
	}
	return MSERResult{Cut: bestD * m, Batches: k, Statistic: bestZ}
}

// TruncateMSER returns xs with the MSER-m cut removed from the front.
// The returned slice aliases xs.
func TruncateMSER(xs []float64, m int) []float64 {
	r := MSERm(xs, m)
	return xs[r.Cut:]
}

// TransientLength implements the Figure 10 estimator: given the
// per-index mean access delays means[i] (i = packet number within the
// train, averaged over replications) and the steady-state mean, it
// returns the 1-based index of the first packet whose mean lies within
// tol (relative) of the steady-state value *and stays within it* for the
// remainder of the series. It returns len(means) when the series never
// settles.
func TransientLength(means []float64, steady float64, tol float64) int {
	if tol <= 0 {
		panic(fmt.Sprintf("stats: tolerance %g must be positive", tol))
	}
	if steady == 0 {
		panic("stats: zero steady-state mean")
	}
	within := func(x float64) bool {
		rel := (x - steady) / steady
		if rel < 0 {
			rel = -rel
		}
		return rel <= tol
	}
	for i := range means {
		ok := true
		for j := i; j < len(means); j++ {
			if !within(means[j]) {
				ok = false
				break
			}
		}
		if ok {
			return i + 1
		}
	}
	return len(means)
}

// RunningMeans returns the per-index mean across replications:
// reps[r][i] is observation i of replication r; output[i] is the mean of
// observation i over all replications that reached index i. This is how
// the paper aggregates the access delay of the i-th probing packet over
// 25000 repetitions (Fig. 6).
func RunningMeans(reps [][]float64) []float64 {
	maxLen := 0
	for _, r := range reps {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	sums := make([]float64, maxLen)
	counts := make([]int, maxLen)
	for _, r := range reps {
		for i, v := range r {
			sums[i] += v
			counts[i]++
		}
	}
	out := make([]float64, maxLen)
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// Column extracts observation i from each replication that has it —
// the per-packet-index sample the KS analysis of Figs. 8 and 9 compares
// against the steady-state pool.
func Column(reps [][]float64, i int) []float64 {
	var out []float64
	for _, r := range reps {
		if i < len(r) {
			out = append(out, r[i])
		}
	}
	return out
}

// Tail concatenates observations from index from (inclusive) onwards
// across all replications — the steady-state pool ("the access delay
// distribution of the last packets").
func Tail(reps [][]float64, from int) []float64 {
	var out []float64
	for _, r := range reps {
		if from < len(r) {
			out = append(out, r[from:]...)
		}
	}
	return out
}
