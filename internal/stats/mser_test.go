package stats

import (
	"math"
	"testing"

	"csmabw/internal/sim"
)

// warmupSeries builds a series with an initial transient that rises from
// lowStart to the steady mean over warm samples, then fluctuates around
// the steady mean.
func warmupSeries(r *sim.Rand, n, warm int, lowStart, steady, noise float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		base := steady
		if i < warm {
			frac := float64(i) / float64(warm)
			base = lowStart + (steady-lowStart)*frac
		}
		xs[i] = base + (r.Float64()-0.5)*2*noise
	}
	return xs
}

func TestMSERDetectsWarmup(t *testing.T) {
	r := sim.NewRand(1)
	xs := warmupSeries(r, 400, 60, 0.0, 10.0, 0.3)
	res := MSERm(xs, 1)
	if res.Cut < 30 || res.Cut > 120 {
		t.Errorf("MSER cut = %d, expected near the 60-sample warm-up", res.Cut)
	}
}

func TestMSERNoWarmup(t *testing.T) {
	r := sim.NewRand(2)
	xs := warmupSeries(r, 400, 0, 10, 10, 0.3)
	res := MSERm(xs, 1)
	// Stationary series: the cut should be small relative to the series.
	if res.Cut > 80 {
		t.Errorf("MSER cut = %d on a stationary series", res.Cut)
	}
}

func TestMSERBatching(t *testing.T) {
	r := sim.NewRand(3)
	xs := warmupSeries(r, 400, 60, 0, 10, 0.3)
	res := MSERm(xs, 2)
	if res.Cut%2 != 0 {
		t.Errorf("MSER-2 cut %d not a multiple of the batch size", res.Cut)
	}
	if res.Batches != 200 {
		t.Errorf("batches = %d, want 200", res.Batches)
	}
}

func TestMSERShortSeries(t *testing.T) {
	res := MSERm([]float64{1}, 2)
	if res.Cut != 0 {
		t.Errorf("cut = %d on a too-short series", res.Cut)
	}
}

func TestMSERPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch size 0")
		}
	}()
	MSERm([]float64{1, 2}, 0)
}

func TestTruncateMSER(t *testing.T) {
	r := sim.NewRand(4)
	xs := warmupSeries(r, 300, 50, 0, 10, 0.2)
	trunc := TruncateMSER(xs, 2)
	if len(trunc) >= len(xs) {
		t.Error("truncation removed nothing from a warm-up series")
	}
	// The truncated series' mean should be closer to the steady value.
	if math.Abs(Mean(trunc)-10) >= math.Abs(Mean(xs)-10) {
		t.Error("truncated mean no closer to steady state")
	}
}

func TestTransientLength(t *testing.T) {
	// Means ramping to 1.0.
	means := []float64{0.5, 0.7, 0.85, 0.93, 0.97, 0.995, 1.0, 1.005, 0.995}
	tests := []struct {
		tol  float64
		want int
	}{
		{0.10, 4}, // first index within 10% and staying: 0.93
		{0.01, 6}, // 0.995 onward
	}
	for _, tt := range tests {
		if got := TransientLength(means, 1.0, tt.tol); got != tt.want {
			t.Errorf("tol %.2f: length = %d, want %d", tt.tol, got, tt.want)
		}
	}
}

func TestTransientLengthStricterIsLonger(t *testing.T) {
	means := make([]float64, 200)
	for i := range means {
		means[i] = 1 - math.Exp(-float64(i)/30)
	}
	l1 := TransientLength(means, 1, 0.1)
	l2 := TransientLength(means, 1, 0.01)
	if l2 <= l1 {
		t.Errorf("0.01 tolerance length %d <= 0.1 tolerance %d", l2, l1)
	}
}

func TestTransientLengthNeverSettles(t *testing.T) {
	means := []float64{0.1, 0.2, 0.1, 0.2}
	if got := TransientLength(means, 1, 0.1); got != len(means) {
		t.Errorf("never-settling series returned %d", got)
	}
}

func TestTransientLengthExcursionResets(t *testing.T) {
	// A series that enters the band, leaves, then re-enters: the length
	// must reflect the *final* entry.
	means := []float64{1.0, 1.0, 2.0, 1.0, 1.0}
	if got := TransientLength(means, 1, 0.05); got != 4 {
		t.Errorf("length = %d, want 4 (after the excursion)", got)
	}
}

func TestTransientLengthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero tol":    func() { TransientLength([]float64{1}, 1, 0) },
		"zero steady": func() { TransientLength([]float64{1}, 0, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRunningMeans(t *testing.T) {
	reps := [][]float64{
		{1, 2, 3},
		{3, 4},
		{5, 6, 7, 8},
	}
	got := RunningMeans(reps)
	want := []float64{3, 4, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("index %d: %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRunningMeansEmpty(t *testing.T) {
	if got := RunningMeans(nil); len(got) != 0 {
		t.Errorf("RunningMeans(nil) = %v", got)
	}
}

func TestColumn(t *testing.T) {
	reps := [][]float64{{1, 2}, {3}, {5, 6}}
	if got := Column(reps, 1); len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Errorf("Column(1) = %v", got)
	}
	if got := Column(reps, 5); got != nil {
		t.Errorf("Column(5) = %v, want nil", got)
	}
}

func TestTail(t *testing.T) {
	reps := [][]float64{{1, 2, 3}, {4, 5}}
	got := Tail(reps, 1)
	want := []float64{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Tail = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tail[%d] = %g", i, got[i])
		}
	}
}
