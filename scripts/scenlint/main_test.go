package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckedInScenariosAreClean runs the linter over the real spec
// directory: the checked-in scenarios must always pass.
func TestCheckedInScenariosAreClean(t *testing.T) {
	findings, err := lintDir("../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) > 0 {
		t.Errorf("checked-in scenarios have findings:\n%s", strings.Join(findings, "\n"))
	}
}

// TestLintCampaignFindings exercises the campaigns/ subdirectory pass:
// a campaign referencing a missing scenario, one with duplicate job
// IDs, a name/file mismatch, and a clean one.
func TestLintCampaignFindings(t *testing.T) {
	dir := t.TempDir()
	cell := `{"name": "cell", "description": "d",
		"probing": {"plan": "train", "packets": 10, "rate_mbps": 5}}`
	if err := os.WriteFile(filepath.Join(dir, "cell.json"), []byte(cell), 0o644); err != nil {
		t.Fatal(err)
	}
	campdir := filepath.Join(dir, "campaigns")
	if err := os.Mkdir(campdir, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string // file base name, without .json
		body string
		frag string // substring of the expected finding ("" = clean)
	}{
		{name: "missing-scenario", body: `{"name": "missing-scenario", "description": "d",
			"jobs": [{"id": "x", "scenario": "../no-such.json", "estimator": "topp"}]}`,
			frag: "no-such.json"},
		{name: "dup-ids", body: `{"name": "dup-ids", "description": "d",
			"jobs": [{"id": "x", "scenario": "../cell.json", "estimator": "topp"},
			         {"id": "x", "scenario": "../cell.json", "estimator": "slops"}]}`,
			frag: "duplicate job id"},
		{name: "renamed", body: `{"name": "other", "description": "d",
			"jobs": [{"id": "x", "scenario": "../cell.json", "estimator": "topp"}]}`,
			frag: "does not match"},
		{name: "undescribed", body: `{"name": "undescribed",
			"jobs": [{"id": "x", "scenario": "../cell.json", "estimator": "topp"}]}`,
			frag: "no description"},
		{name: "clean", body: `{"name": "clean", "description": "d",
			"jobs": [{"id": "x", "scenario": "../cell.json", "estimator": "topp"}]}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(campdir, tt.name+".json")
			if err := os.WriteFile(path, []byte(tt.body), 0o644); err != nil {
				t.Fatal(err)
			}
			findings := lintCampaign(path)
			if tt.frag == "" {
				if len(findings) != 0 {
					t.Errorf("clean campaign produced findings: %v", findings)
				}
				return
			}
			if len(findings) == 0 {
				t.Fatal("bad campaign produced no findings")
			}
			if !strings.Contains(findings[0], tt.frag) {
				t.Errorf("finding %q lacks %q", findings[0], tt.frag)
			}
		})
	}
	// The directory walk picks campaigns up (alongside the scenario spec).
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Errorf("lintDir findings = %v, want 4 (one per bad campaign)", findings)
	}
}

func TestEmptyDirIsAFinding(t *testing.T) {
	findings, err := lintDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "no scenario specs") {
		t.Errorf("findings = %v, want one no-specs finding", findings)
	}
}

func TestLintFileFindings(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string // file base name, without .json
		body string
		frag string // substring of the expected finding ("" = clean)
	}{
		{name: "mismatch", body: `{"name": "other", "description": "d",
			"probing": {"plan": "train", "packets": 10, "rate_mbps": 5}}`,
			frag: "does not match"},
		{name: "undescribed", body: `{"name": "undescribed",
			"probing": {"plan": "train", "packets": 10, "rate_mbps": 5}}`,
			frag: "no description"},
		{name: "invalid", body: `{"name": "invalid", "description": "d",
			"probing": {"plan": "warp", "packets": 10, "rate_mbps": 5}}`,
			frag: "plan"},
		{name: "garbage", body: `{"name": `, frag: "garbage"},
		{name: "legacy", body: `{"name": "legacy", "description": "d",
			"probing": {"plan": "train", "packets": 10, "rate_mbps": 5},
			"phases": ["0-1s warm-up"]}`,
			frag: `deprecated "phases"`},
		{name: "bad-event", body: `{"name": "bad-event", "description": "d",
			"probing": {"plan": "train", "packets": 10, "rate_mbps": 5},
			"events": [{"at": "1s", "station": "ghost", "fer": 0.2}]}`,
			frag: "events[0].station"},
		{name: "inert-event", body: `{"name": "inert-event", "description": "d",
			"probing": {"plan": "steady", "rate_mbps": 5, "duration_seconds": 1},
			"events": [{"at": "10s", "fer": 0.2}]}`,
			frag: "can never fire"},
		{name: "live-event", body: `{"name": "live-event", "description": "d",
			"probing": {"plan": "steady", "rate_mbps": 5, "duration_seconds": 1},
			"events": [{"at": "1s", "fer": 0.2}]}`},
		{name: "clean", body: `{"name": "clean", "description": "d",
			"probing": {"plan": "train", "packets": 10, "rate_mbps": 5}}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			path := filepath.Join(dir, tt.name+".json")
			if err := os.WriteFile(path, []byte(tt.body), 0o644); err != nil {
				t.Fatal(err)
			}
			findings := lintFile(path)
			if tt.frag == "" {
				if len(findings) != 0 {
					t.Errorf("clean spec produced findings: %v", findings)
				}
				return
			}
			if len(findings) == 0 {
				t.Fatal("bad spec produced no findings")
			}
			if !strings.Contains(findings[0], tt.frag) {
				t.Errorf("finding %q lacks %q", findings[0], tt.frag)
			}
		})
	}
}
