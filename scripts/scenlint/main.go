// Command scenlint polices the checked-in scenario specs: every
// .json file under the given directories must compile through the
// scenario package's full static validation, carry a description, and
// have its spec name match the file's base name — so a spec is
// addressable by the name it prints and the goldens it renders stay
// traceable to one file. A campaigns/ subdirectory gets the same
// treatment through the campaign compiler: every campaign file must
// parse (unique job IDs, valid kinds, finite budgets) and every
// scenario spec it references must exist and compile. It runs in CI
// next to gofmt and go vet.
//
//	go run ./scripts/scenlint ./scenarios
//
// Exit status: 0 when clean, 1 with one "file: problem" line per
// finding, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"csmabw/internal/campaign"
	"csmabw/internal/scenario"
	"csmabw/internal/sim"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"./scenarios"}
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(1)
	}
}

// lintDir validates every .json spec under dir and returns one finding
// line per problem. A directory with no specs at all is itself a
// finding — an empty glob would otherwise pass silently after a rename.
func lintDir(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return []string{fmt.Sprintf("%s: no scenario specs found", dir)}, nil
	}
	var findings []string
	for _, path := range paths {
		findings = append(findings, lintFile(path)...)
	}
	campaigns, err := filepath.Glob(filepath.Join(dir, "campaigns", "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(campaigns)
	for _, path := range campaigns {
		findings = append(findings, lintCampaign(path)...)
	}
	return findings, nil
}

// lintCampaign compiles one campaign file — which parses it strictly
// (unique job IDs, valid estimator kinds, finite budgets) and compiles
// every scenario spec it references — and checks the same housekeeping
// invariants as scenario specs.
func lintCampaign(path string) []string {
	p, err := campaign.CompileFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var findings []string
	stem := strings.TrimSuffix(filepath.Base(path), ".json")
	if p.Spec.Name != stem {
		findings = append(findings, fmt.Sprintf("%s: campaign name %q does not match file name %q", path, p.Spec.Name, stem))
	}
	if strings.TrimSpace(p.Spec.Description) == "" {
		findings = append(findings, fmt.Sprintf("%s: campaign has no description", path))
	}
	return findings
}

// lintFile compiles one spec file and checks its housekeeping
// invariants, returning one finding line per problem. Beyond what the
// compiler already rejects (malformed events, ghost stations,
// out-of-order instants), the linter flags the deprecated free-text
// "phases" key and scheduled events a steady measurement can never
// reach — both legal, both almost certainly mistakes in a checked-in
// library spec.
func lintFile(path string) []string {
	s, err := scenario.Load(path)
	if err != nil {
		return []string{err.Error()}
	}
	c, err := s.Compile()
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var findings []string
	stem := strings.TrimSuffix(filepath.Base(path), ".json")
	if c.Name != stem {
		findings = append(findings, fmt.Sprintf("%s: spec name %q does not match file name %q", path, c.Name, stem))
	}
	if strings.TrimSpace(c.Description) == "" {
		findings = append(findings, fmt.Sprintf("%s: spec has no description", path))
	}
	if s.LegacyPhases {
		findings = append(findings, fmt.Sprintf("%s: deprecated \"phases\" key; rename to \"notes\", or describe the timeline as structured \"events\"", path))
	}
	if c.Probing.Plan == scenario.PlanSteady && c.Probing.DurationSeconds > 0 {
		// The steady horizon is warm-up plus the spec's own measurement
		// duration; an event at or past it can never fire at that
		// duration. Specs that leave the duration to the tool's scale
		// are skipped — the horizon isn't theirs to miss.
		horizon := c.Link.WithDefaults().WarmUp + sim.FromSeconds(c.Probing.DurationSeconds)
		for i, ev := range c.Link.Schedule {
			if ev.At >= horizon {
				findings = append(findings, fmt.Sprintf("%s: events[%d] at %v is past the spec's steady horizon %v (warm-up + duration): it can never fire", path, i, ev.At, horizon))
			}
		}
	}
	return findings
}
