// Command scenlint polices the checked-in scenario specs: every
// .json file under the given directories must compile through the
// scenario package's full static validation, carry a description, and
// have its spec name match the file's base name — so a spec is
// addressable by the name it prints and the goldens it renders stay
// traceable to one file. A campaigns/ subdirectory gets the same
// treatment through the campaign compiler: every campaign file must
// parse (unique job IDs, valid kinds, finite budgets) and every
// scenario spec it references must exist and compile. It runs in CI
// next to gofmt and go vet.
//
//	go run ./scripts/scenlint ./scenarios
//
// Exit status: 0 when clean, 1 with one "file: problem" line per
// finding, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"csmabw/internal/campaign"
	"csmabw/internal/scenario"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"./scenarios"}
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		os.Exit(1)
	}
}

// lintDir validates every .json spec under dir and returns one finding
// line per problem. A directory with no specs at all is itself a
// finding — an empty glob would otherwise pass silently after a rename.
func lintDir(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return []string{fmt.Sprintf("%s: no scenario specs found", dir)}, nil
	}
	var findings []string
	for _, path := range paths {
		findings = append(findings, lintFile(path)...)
	}
	campaigns, err := filepath.Glob(filepath.Join(dir, "campaigns", "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(campaigns)
	for _, path := range campaigns {
		findings = append(findings, lintCampaign(path)...)
	}
	return findings, nil
}

// lintCampaign compiles one campaign file — which parses it strictly
// (unique job IDs, valid estimator kinds, finite budgets) and compiles
// every scenario spec it references — and checks the same housekeeping
// invariants as scenario specs.
func lintCampaign(path string) []string {
	p, err := campaign.CompileFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var findings []string
	stem := strings.TrimSuffix(filepath.Base(path), ".json")
	if p.Spec.Name != stem {
		findings = append(findings, fmt.Sprintf("%s: campaign name %q does not match file name %q", path, p.Spec.Name, stem))
	}
	if strings.TrimSpace(p.Spec.Description) == "" {
		findings = append(findings, fmt.Sprintf("%s: campaign has no description", path))
	}
	return findings
}

// lintFile compiles one spec file and checks its housekeeping
// invariants, returning one finding line per problem.
func lintFile(path string) []string {
	c, err := scenario.CompileFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var findings []string
	stem := strings.TrimSuffix(filepath.Base(path), ".json")
	if c.Name != stem {
		findings = append(findings, fmt.Sprintf("%s: spec name %q does not match file name %q", path, c.Name, stem))
	}
	if strings.TrimSpace(c.Description) == "" {
		findings = append(findings, fmt.Sprintf("%s: spec has no description", path))
	}
	return findings
}
