package main

import (
	"strings"
	"testing"
)

func TestRegressions(t *testing.T) {
	baseline := map[string]record{
		"fig06": {ReplicationsPerSec: 1000},
		"fig07": {ReplicationsPerSec: 1000},
		"gone":  {ReplicationsPerSec: 500},
		"zero":  {ReplicationsPerSec: 0},
	}
	current := map[string]record{
		"fig06": {ReplicationsPerSec: 600},  // above the 50% floor
		"fig07": {ReplicationsPerSec: 400},  // regression
		"new":   {ReplicationsPerSec: 9999}, // no baseline: ignored
		"zero":  {ReplicationsPerSec: 1},    // zero baseline: ignored
	}
	regs := regressions(baseline, current, 0.5)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "fig07:") {
		t.Fatalf("regressions = %v, want exactly fig07", regs)
	}
	if regs := regressions(baseline, current, 0.7); len(regs) != 0 {
		t.Fatalf("wide tolerance still flags: %v", regs)
	}
}

func TestAllocRegressions(t *testing.T) {
	baseline := map[string]record{
		"fig06": {AllocsPerReplication: 100},
		"fig07": {AllocsPerReplication: 100},
		"old":   {AllocsPerReplication: 0}, // pre-telemetry baseline: skipped
	}
	current := map[string]record{
		"fig06": {AllocsPerReplication: 150}, // within 2x ceiling
		"fig07": {AllocsPerReplication: 250}, // blown past 2x
		"old":   {AllocsPerReplication: 1e9}, // no armed baseline: ignored
	}
	regs := allocRegressions(baseline, current, 1.0)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "fig07:") {
		t.Fatalf("alloc regressions = %v, want exactly fig07", regs)
	}
}

func TestEffectiveFloor(t *testing.T) {
	cases := []struct {
		requested        float64
		maxW, gomaxprocs int
		want             float64
	}{
		{3.0, 8, 8, 3.0},  // plenty of cores: requested floor stands
		{3.0, 8, 4, 3.0},  // 4 cores attainable: 0.75*4 = 3.0
		{3.0, 8, 2, 1.5},  // 2 cores: capped at 0.75*2
		{3.0, 8, 1, 0.75}, // single core: only "not slower than serial"
		{3.0, 8, 0, 0.75}, // old telemetry without gomaxprocs
		{3.0, 2, 8, 1.5},  // sweep itself only went to 2 workers
		{0.5, 8, 8, 0.7},  // floor never drops below 0.7
	}
	for _, tc := range cases {
		if got := effectiveFloor(tc.requested, tc.maxW, tc.gomaxprocs); got != tc.want {
			t.Errorf("effectiveFloor(%g, %d, %d) = %g, want %g",
				tc.requested, tc.maxW, tc.gomaxprocs, got, tc.want)
		}
	}
}

func TestScalingViolations(t *testing.T) {
	current := map[string]record{
		// fig06 scales well on an 8-core recording: no violation.
		"fig06-scaling-workers1": {ReplicationsPerSec: 1000, Gomaxprocs: 8},
		"fig06-scaling-workers8": {ReplicationsPerSec: 4000, Gomaxprocs: 8},
		// fig09 plateaued on the same hardware: violation at floor 3.0.
		"fig09-scaling-workers1": {ReplicationsPerSec: 1000, Gomaxprocs: 8},
		"fig09-scaling-workers8": {ReplicationsPerSec: 1200, Gomaxprocs: 8},
		// Non-sweep entries are ignored.
		"fig06": {ReplicationsPerSec: 2400, Gomaxprocs: 8},
	}
	regs := scalingViolations(current, 3.0)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "fig09:") {
		t.Fatalf("scaling violations = %v, want exactly fig09", regs)
	}
	// The same plateau on a single-core recording is not a violation —
	// 1.2x is above the 0.75 single-core floor.
	single := map[string]record{
		"fig09-scaling-workers1": {ReplicationsPerSec: 1000, Gomaxprocs: 1},
		"fig09-scaling-workers8": {ReplicationsPerSec: 1200, Gomaxprocs: 1},
	}
	if regs := scalingViolations(single, 3.0); len(regs) != 0 {
		t.Fatalf("single-core sweep flagged: %v", regs)
	}
	// But the worker pool being materially slower than serial always is.
	slower := map[string]record{
		"fig09-scaling-workers1": {ReplicationsPerSec: 1000, Gomaxprocs: 1},
		"fig09-scaling-workers8": {ReplicationsPerSec: 500, Gomaxprocs: 1},
	}
	if regs := scalingViolations(slower, 3.0); len(regs) != 1 {
		t.Fatalf("parallel-slower-than-serial not flagged: %v", regs)
	}
}
