package main

import (
	"strings"
	"testing"
)

func TestRegressions(t *testing.T) {
	baseline := map[string]record{
		"fig06": {ReplicationsPerSec: 1000},
		"fig07": {ReplicationsPerSec: 1000},
		"gone":  {ReplicationsPerSec: 500},
		"zero":  {ReplicationsPerSec: 0},
	}
	current := map[string]record{
		"fig06": {ReplicationsPerSec: 600},  // above the 50% floor
		"fig07": {ReplicationsPerSec: 400},  // regression
		"new":   {ReplicationsPerSec: 9999}, // no baseline: ignored
		"zero":  {ReplicationsPerSec: 1},    // zero baseline: ignored
	}
	regs := regressions(baseline, current, 0.5)
	if len(regs) != 1 || !strings.HasPrefix(regs[0], "fig07:") {
		t.Fatalf("regressions = %v, want exactly fig07", regs)
	}
	if regs := regressions(baseline, current, 0.7); len(regs) != 0 {
		t.Fatalf("wide tolerance still flags: %v", regs)
	}
}
