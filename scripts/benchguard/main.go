// Command benchguard compares a freshly generated BENCH_runner.json
// against the committed baseline and fails when any figure's
// replication throughput regressed beyond the tolerance band. It is the
// CI tripwire for the replication engine's headline metric: a change
// that silently halves reps/sec on a dense figure fails the build
// instead of landing unnoticed.
//
//	go run ./scripts/benchguard -baseline BENCH_baseline.json -current BENCH_runner.json -tolerance 0.5
//
// Tolerance is the permitted fractional drop: 0.5 passes anything above
// half the baseline throughput, a deliberately wide band because shared
// CI runners jitter heavily. Figures present in only one file are
// reported but never fail the run (new figures appear, scaling sweeps
// change worker counts).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	WallSeconds        float64 `json:"wall_seconds"`
	Replications       int     `json:"replications"`
	ReplicationsPerSec float64 `json:"replications_per_sec"`
	Workers            int     `json:"workers"`
}

func load(path string) (map[string]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]record
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// regressions returns a line per figure whose current throughput fell
// below (1-tolerance) times the baseline.
func regressions(baseline, current map[string]record, tolerance float64) []string {
	var out []string
	for id, base := range baseline {
		cur, ok := current[id]
		if !ok || base.ReplicationsPerSec <= 0 {
			continue
		}
		floor := base.ReplicationsPerSec * (1 - tolerance)
		if cur.ReplicationsPerSec < floor {
			out = append(out, fmt.Sprintf("%s: %.1f reps/s, below floor %.1f (baseline %.1f, tolerance %.0f%%)",
				id, cur.ReplicationsPerSec, floor, base.ReplicationsPerSec, tolerance*100))
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_runner.json baseline")
	currentPath := flag.String("current", "BENCH_runner.json", "freshly generated telemetry")
	tolerance := flag.Float64("tolerance", 0.5, "permitted fractional reps/sec drop before failing")
	flag.Parse()
	if *baselinePath == "" || *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: need -baseline and 0 <= -tolerance < 1")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	for id := range baseline {
		if _, ok := current[id]; !ok {
			fmt.Printf("benchguard: note: %s present in baseline only\n", id)
		}
	}
	for id := range current {
		if _, ok := baseline[id]; !ok {
			fmt.Printf("benchguard: note: %s present in current only\n", id)
		}
	}
	if regs := regressions(baseline, current, *tolerance); len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchguard: REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d figures within %.0f%% of baseline\n", len(baseline), *tolerance*100)
}
