// Command benchguard compares a freshly generated BENCH_runner.json
// against the committed baseline and fails when the replication engine
// regressed on any of its three guarded axes:
//
//   - throughput: a figure's replications-per-second fell beyond the
//     tolerance band below its baseline;
//   - allocations: a figure's allocations-per-replication grew beyond
//     the alloc tolerance above its baseline (per-worker engine reuse
//     is what keeps this near zero — a leak here silently re-inflates
//     every replication);
//   - scaling: the worker sweep's workers=N-vs-workers=1 throughput
//     ratio fell below the scaling floor (batched claiming is what
//     keeps the sweep off the old plateau).
//
// Usage:
//
//	go run ./scripts/benchguard -baseline BENCH_baseline.json -current BENCH_runner.json \
//	    -tolerance 0.5 -alloc-tolerance 1.0 -min-scaling-ratio 3.0
//
// Tolerance is the permitted fractional drop: 0.5 passes anything above
// half the baseline throughput, a deliberately wide band because shared
// CI runners jitter heavily. Alloc tolerance is the permitted
// fractional growth (1.0 = up to double the baseline); baselines
// without alloc telemetry are skipped. Figures present in only one file
// are reported but never fail the run (new figures appear, scaling
// sweeps change worker counts).
//
// The scaling floor is hardware-aware. Sweep entries are recognised by
// the `<figure>-scaling-workers<N>` id convention and carry the
// gomaxprocs the benchmark ran under; the effective floor for a sweep
// is the requested floor capped at 75% of the attainable parallelism
// min(maxWorkers, gomaxprocs), and never below 0.7. So on a single-core
// machine the gate only asserts that the worker pool costs (almost)
// nothing, while a multi-core CI runner must show real speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	WallSeconds          float64 `json:"wall_seconds"`
	Replications         int     `json:"replications"`
	ReplicationsPerSec   float64 `json:"replications_per_sec"`
	Workers              int     `json:"workers"`
	AllocsPerReplication float64 `json:"allocs_per_replication"`
	Gomaxprocs           int     `json:"gomaxprocs"`
}

func load(path string) (map[string]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]record
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// regressions returns a line per figure whose current throughput fell
// below (1-tolerance) times the baseline.
func regressions(baseline, current map[string]record, tolerance float64) []string {
	var out []string
	for id, base := range baseline {
		cur, ok := current[id]
		if !ok || base.ReplicationsPerSec <= 0 {
			continue
		}
		floor := base.ReplicationsPerSec * (1 - tolerance)
		if cur.ReplicationsPerSec < floor {
			out = append(out, fmt.Sprintf("%s: %.1f reps/s, below floor %.1f (baseline %.1f, tolerance %.0f%%)",
				id, cur.ReplicationsPerSec, floor, base.ReplicationsPerSec, tolerance*100))
		}
	}
	sort.Strings(out)
	return out
}

// allocRegressions returns a line per figure whose current
// allocations-per-replication grew beyond (1+tolerance) times the
// baseline. Baselines without alloc telemetry (zero) are skipped, so
// the gate arms itself the first time a baseline with the field lands.
func allocRegressions(baseline, current map[string]record, tolerance float64) []string {
	var out []string
	for id, base := range baseline {
		cur, ok := current[id]
		if !ok || base.AllocsPerReplication <= 0 {
			continue
		}
		ceil := base.AllocsPerReplication * (1 + tolerance)
		if cur.AllocsPerReplication > ceil {
			out = append(out, fmt.Sprintf("%s: %.0f allocs/replication, above ceiling %.0f (baseline %.0f, tolerance %.0f%%)",
				id, cur.AllocsPerReplication, ceil, base.AllocsPerReplication, tolerance*100))
		}
	}
	sort.Strings(out)
	return out
}

// sweep is one figure's worker-scaling measurements, extracted from the
// `<figure>-scaling-workers<N>` entries.
type sweep struct {
	rps        map[int]float64 // worker count -> reps/sec
	gomaxprocs int
}

// scalingSweeps groups a telemetry file's scaling entries by figure.
func scalingSweeps(m map[string]record) map[string]sweep {
	const marker = "-scaling-workers"
	out := map[string]sweep{}
	for id, rec := range m {
		at := strings.LastIndex(id, marker)
		if at < 0 {
			continue
		}
		w, err := strconv.Atoi(id[at+len(marker):])
		if err != nil || w < 1 {
			continue
		}
		fig := id[:at]
		s, ok := out[fig]
		if !ok {
			s = sweep{rps: map[int]float64{}}
		}
		s.rps[w] = rec.ReplicationsPerSec
		if rec.Gomaxprocs > s.gomaxprocs {
			s.gomaxprocs = rec.Gomaxprocs
		}
		out[fig] = s
	}
	return out
}

// effectiveFloor caps the requested scaling floor by the parallelism
// the recording machine could actually deliver: 75% efficiency of
// min(maxWorkers, gomaxprocs), never below 0.7 (even a single core
// must not make the worker pool materially slower than serial). An
// unrecorded gomaxprocs (old telemetry) is treated as 1.
func effectiveFloor(requested float64, maxWorkers, gomaxprocs int) float64 {
	if gomaxprocs < 1 {
		gomaxprocs = 1
	}
	attainable := maxWorkers
	if gomaxprocs < attainable {
		attainable = gomaxprocs
	}
	floor := requested
	if cap := 0.75 * float64(attainable); cap < floor {
		floor = cap
	}
	if floor < 0.7 {
		floor = 0.7
	}
	return floor
}

// scalingViolations returns a line per scaling sweep whose
// max-workers-vs-one-worker throughput ratio fell below the
// hardware-capped floor. Sweeps without a workers=1 entry are skipped.
func scalingViolations(current map[string]record, requestedFloor float64) []string {
	var out []string
	for fig, s := range scalingSweeps(current) {
		base, ok := s.rps[1]
		if !ok || base <= 0 {
			continue
		}
		maxW := 1
		for w := range s.rps {
			if w > maxW {
				maxW = w
			}
		}
		if maxW == 1 {
			continue
		}
		ratio := s.rps[maxW] / base
		floor := effectiveFloor(requestedFloor, maxW, s.gomaxprocs)
		if ratio < floor {
			out = append(out, fmt.Sprintf(
				"%s: workers=%d is %.2fx workers=1, below floor %.2f (requested %.2f, gomaxprocs %d)",
				fig, maxW, ratio, floor, requestedFloor, s.gomaxprocs))
		}
	}
	sort.Strings(out)
	return out
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_runner.json baseline")
	currentPath := flag.String("current", "BENCH_runner.json", "freshly generated telemetry")
	tolerance := flag.Float64("tolerance", 0.5, "permitted fractional reps/sec drop before failing")
	allocTolerance := flag.Float64("alloc-tolerance", -1, "permitted fractional allocs/replication growth before failing (negative disables)")
	minScalingRatio := flag.Float64("min-scaling-ratio", 0, "required workers=N vs workers=1 reps/sec ratio in the current scaling sweeps, capped by recorded gomaxprocs (0 disables)")
	flag.Parse()
	if *baselinePath == "" || *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: need -baseline and 0 <= -tolerance < 1")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	for id := range baseline {
		if _, ok := current[id]; !ok {
			fmt.Printf("benchguard: note: %s present in baseline only\n", id)
		}
	}
	for id := range current {
		if _, ok := baseline[id]; !ok {
			fmt.Printf("benchguard: note: %s present in current only\n", id)
		}
	}
	var failures []string
	for _, r := range regressions(baseline, current, *tolerance) {
		failures = append(failures, "REGRESSION "+r)
	}
	if *allocTolerance >= 0 {
		for _, r := range allocRegressions(baseline, current, *allocTolerance) {
			failures = append(failures, "ALLOC REGRESSION "+r)
		}
	}
	if *minScalingRatio > 0 {
		for _, r := range scalingViolations(current, *minScalingRatio) {
			failures = append(failures, "SCALING "+r)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchguard: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d figures within %.0f%% of baseline\n", len(baseline), *tolerance*100)
}
