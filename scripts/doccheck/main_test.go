package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse wraps a source snippet into a parsed file for undocumented.
func parse(t *testing.T, src string) ([]string, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return undocumented(fset, file), fset
}

func TestUndocumentedFindings(t *testing.T) {
	findings, _ := parse(t, `package p

type Exposed struct{}

func Naked() {}

func (Exposed) Method() {}

const Loose = 1

var Stray int
`)
	want := []string{"Exposed", "Naked", "Method", "Loose", "Stray"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(findings), findings, len(want))
	}
	for i, id := range want {
		if !strings.HasSuffix(findings[i], ": "+id) {
			t.Errorf("finding %d = %q, want identifier %s", i, findings[i], id)
		}
	}
}

func TestDocumentedFormsPass(t *testing.T) {
	findings, _ := parse(t, `package p

// Documented has a doc comment.
type Documented struct{}

// Fine is documented.
func Fine() {}

// Method is documented.
func (Documented) Method() {}

// Group doc covers every member.
const (
	A = 1
	B = 2
)

var (
	// C has a spec doc.
	C int
	D int // D has an inline comment.
)

// Declaration-group doc covers a single type spec too.
type (
	Aliased = Documented
)
`)
	if len(findings) != 0 {
		t.Fatalf("false positives: %v", findings)
	}
}

func TestUnexportedAndTestConstructsIgnored(t *testing.T) {
	findings, _ := parse(t, `package p

type hidden struct{}

func helper() {}

var internal int
`)
	if len(findings) != 0 {
		t.Fatalf("unexported identifiers flagged: %v", findings)
	}
}

func TestUngroupedVarWithoutAnyDocFlagged(t *testing.T) {
	findings, _ := parse(t, `package p

var (
	Orphan int
)
`)
	if len(findings) != 1 || !strings.HasSuffix(findings[0], ": Orphan") {
		t.Fatalf("findings = %v, want exactly Orphan", findings)
	}
}
