// Command doccheck enforces the repository's documentation bar: every
// exported identifier in the packages under the given roots must carry
// a doc comment. It runs in CI next to gofmt and go vet, so an
// exported type, function, method, constant or variable cannot land
// undocumented.
//
//	go run ./scripts/doccheck ./internal/...
//
// Roots are directories; a trailing /... (or not) walks recursively
// either way. Test files and testdata directories are skipped. For
// const/var/type declarations the doc may sit on the declaration group
// or on the individual spec (an inline trailing comment counts for
// grouped const/var members); functions and methods need their own doc
// comment. Struct fields and interface methods are the package
// author's judgement call and are not checked.
//
// Exit status: 0 when clean, 1 with one "file:line: identifier" line
// per finding, 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./internal/..."}
	}
	var findings []string
	fset := token.NewFileSet()
	for _, root := range roots {
		root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), "/")
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			findings = append(findings, undocumented(fset, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", len(findings))
		os.Exit(1)
	}
}

// undocumented returns one "file:line: identifier" finding per exported
// top-level identifier in file that lacks a doc comment.
func undocumented(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(name *ast.Ident) {
		pos := fset.Position(name.Pos())
		out = append(out, fmt.Sprintf("%s:%d: %s", pos.Filename, pos.Line, name.Name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Name)
					}
				case *ast.ValueSpec:
					// Grouped const/var members may ride on the block
					// doc or an inline trailing comment.
					if s.Doc != nil || s.Comment != nil || d.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(name)
						}
					}
				}
			}
		}
	}
	return out
}
